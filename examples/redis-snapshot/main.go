// Redis-snapshot: builds the paper's Redis bgsave scenario from scratch
// with the public script builder — a key-value store forks a persistence
// child that scans the whole dataset while the parent keeps absorbing
// writes on CoW-shared pages — and compares all four schemes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lelantus"
)

const (
	dataMB   = 8
	requests = 8000
	lineSize = 64
)

// buildSnapshot scripts the scenario: load, fork, then interleave the
// child's sequential persist scan with the parent's set/get stream.
func buildSnapshot(huge bool, seed int64) lelantus.Script {
	rng := rand.New(rand.NewSource(seed))
	b := lelantus.NewScript("redis-snapshot")
	const parent, child = 0, 1
	dataBytes := uint64(dataMB << 20)
	lines := dataBytes / lineSize

	b.Spawn(parent)
	b.Mmap(parent, 0, dataBytes, huge)
	for off := uint64(0); off < dataBytes; off += lineSize {
		b.Store(parent, 0, off, lineSize, 0x6B) // load the keyspace
	}

	b.Fork(parent, child) // BGSAVE
	b.BeginMeasure()
	chunk := lines / requests
	if chunk == 0 {
		chunk = 1
	}
	scan := uint64(0)
	for i := 0; i < requests; i++ {
		for j := uint64(0); j < chunk && scan < dataBytes; j++ {
			b.Load(child, 0, scan, 32) // child persists sequentially
			scan += lineSize
		}
		off := (rng.Uint64() % lines) * lineSize
		if i%2 == 0 {
			b.Store(parent, 0, off, 48, byte(i)) // SET
		} else {
			b.Load(parent, 0, off, 48) // GET
		}
	}
	for ; scan < dataBytes; scan += lineSize {
		b.Load(child, 0, scan, 32)
	}
	b.EndMeasure()
	b.Exit(child)
	b.Exit(parent)
	return b.Script()
}

func main() {
	script := buildSnapshot(false, 42)
	fmt.Printf("redis snapshot: %d MB dataset, %d requests during BGSAVE\n\n", dataMB, requests)
	fmt.Printf("%-16s %10s %12s %10s %9s\n", "scheme", "exec(ms)", "nvm-writes", "speedup", "writes%")

	var base lelantus.Result
	for i, s := range lelantus.Schemes() {
		res, err := lelantus.Run(s, script)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-16v %10.2f %12d %9.2fx %8.1f%%\n",
			s, float64(res.ExecNs)/1e6, res.NVMWrites,
			res.SpeedupVs(base), 100*res.WriteReductionVs(base))
	}
	fmt.Println("\nthe parent's request latency is dominated by CoW faults during the")
	fmt.Println("scan; Lelantus turns each 4KB copy into one page_copy command.")
}
