module lelantus

go 1.22
