GO ?= go

.PHONY: all build vet test race bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The grid runner and the experiment harness are the only concurrent
# code in the repository; -short keeps the race pass CI-sized while
# still exercising every RunGrid path (the determinism tests run
# multi-worker grids even in short mode).
race:
	$(GO) test -race -short ./internal/sim/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

verify: build vet test race
