GO ?= go

.PHONY: all build vet test race bench bench-json bench-json-timing bench-json-mlp bench-json-prefetch nopanic crash-sweep probe-smoke persist-matrix mlp-smoke prefetch-smoke grid-smoke telemetry-smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The grid runner, the experiment harness and the MLP issue-window pool
# are the concurrent code in the repository; -short keeps the race pass
# CI-sized while still exercising every RunGrid path (the determinism
# tests run multi-worker grids even in short mode). The crash-sweep
# tests run their cells in parallel, so the fault plane rides along; the
# probe plane is per-machine state, so its sim-level tests ride too. The
# nvm and issuewin packages carry the MSHR file and the deterministic
# pool; the sim MLP determinism tests drive the pooled page engines and
# recovery passes multi-worker under the detector.
race:
	$(GO) test -race -short ./internal/sim/... ./internal/experiments/... ./internal/faultinject/... ./internal/probe/... ./internal/nvm/... ./internal/issuewin/... ./internal/grid/... ./internal/steal/... ./internal/metrics/...

# No panic() may be reachable from the public Machine/Controller API:
# internal-invariant failures surface as typed errors through Run.
nopanic:
	@! grep -rn --include='*.go' --exclude='*_test.go' 'panic(' internal lelantus.go \
	    || (echo 'panic() reachable from the public API'; exit 1)

# Crash-point enumeration smoke: crash at strided persist points across
# every scheme, counter-cache mode and persistence strategy, recover, and
# require zero invariant violations.
crash-sweep:
	$(GO) test -count=1 -run 'TestCrashSweep|TestCrashRecovery' ./internal/sim

# Persistence-strategy matrix: the strict strategy must be byte-identical
# to the historical default, relaxed strategies must trade runtime write
# overhead for recovery time (engine-, sim- and harness-level pins), and
# the per-pass RecoveryNs formula must hold for every strategy.
persist-matrix:
	$(GO) test -count=1 ./internal/core -run 'TestPersistStrategy|TestParsePersist'
	$(GO) test -count=1 ./internal/memctrl -run 'TestRecoveryNsFormulaPerPass|TestDrainIssuesAtCurrentTime|TestBatteryDrainPreservesLazyCoWMapping'
	$(GO) test -count=1 ./internal/sim -run 'TestStrictPersistEquivalence|TestPersistTradeoff|TestProbeRecoveryEventsPerStrategy'
	$(GO) test -count=1 ./internal/experiments -run 'TestPersistMatrixTradeoff'

# Probe-plane smoke: run the unit/integration probe tests, then trace a
# real forkbench run end-to-end through the CLI and validate the emitted
# Chrome trace-event JSON with the built-in schema checker.
probe-smoke:
	$(GO) test -count=1 ./internal/probe ./internal/sim -run 'TestProbe|TestValidateTrace|TestWriteTrace'
	$(GO) run ./cmd/lelantus-sim -workload forkbench -fidelity timing \
	    -probe -probe-format=perfetto -probe-out /tmp/lelantus-probe-smoke.json >/dev/null
	$(GO) run ./cmd/lelantus-sim -probe-check /tmp/lelantus-probe-smoke.json
	@rm -f /tmp/lelantus-probe-smoke.json

# MLP smoke: the -mlp=off byte-identity and knob-inertness pins, the
# mlp=on fidelity/pool-size determinism properties, the MSHR/bank unit
# tests, the bank-parallel recovery model, and a CLI run with the
# overlapped engine on.
mlp-smoke:
	$(GO) test -count=1 ./internal/nvm ./internal/issuewin
	$(GO) test -count=1 ./internal/core -run 'TestMLP'
	$(GO) test -count=1 ./internal/memctrl -run 'TestRecoveryNsMLPFormula|TestRecoveryReportMLPInvariant'
	$(GO) test -count=1 ./internal/sim -run 'TestMLP'
	$(GO) test -count=1 -race ./internal/sim -run 'TestMLPOnPoolSizeDeterminism|TestMLPGridConcurrent'
	$(GO) run ./cmd/lelantus-sim -workload forkbench -fidelity timing -mlp=on >/dev/null

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json captures the crypto/metadata hot-path benchmarks as a committed
# JSON baseline: the ReadLine/WriteLine micro-benchmarks (with allocation
# counts) at a fixed benchtime, plus every Fig9 quick cell at two
# iterations (each iteration is one full deterministic simulation, so two
# are enough for a stable ns/op). BENCH_seed.json holds the
# pre-optimization baseline; regenerate BENCH_hotpath.json after touching
# the hot path and compare.
bench-json:
	{ $(GO) test -run '^$$' -bench '^(BenchmarkReadLine|BenchmarkWriteLine)$$' \
	      -benchmem -benchtime 0.2s . ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkFig9|BenchmarkPagePhyc|BenchmarkOverflowSweep|BenchmarkRecoveryScrub)$$' -benchtime 2x . ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_hotpath.json

# bench-json-timing runs the same benchmarks with the crypto data plane
# elided (timing fidelity) into BENCH_timing.json; the benchmark names
# match bench-json's, so `go run ./cmd/benchjson -compare BENCH_hotpath.json
# BENCH_timing.json` prints the per-cell speedup of the fidelity knob.
bench-json-timing:
	{ LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkReadLine|BenchmarkWriteLine)$$' \
	      -benchmem -benchtime 0.2s . ; \
	  LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkFig9|BenchmarkPagePhyc|BenchmarkOverflowSweep|BenchmarkRecoveryScrub)$$' -benchtime 2x . ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_timing.json

# bench-json-mlp reruns the timing-fidelity benchmarks with the
# MSHR-overlapped engine on into BENCH_mlp.json; the names match
# bench-json-timing's, so `go run ./cmd/benchjson -compare -metric sim-ns
# BENCH_timing.json BENCH_mlp.json` prints the simulated-wall-clock
# speedup the MLP model charges per cell — the deliverable; MLP moves
# simulated timestamps, not host work (plain ns/op only shows the pool
# on multi-core hosts at full fidelity, and host noise elsewhere).
bench-json-mlp:
	{ LELANTUS_MLP=on LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkReadLine|BenchmarkWriteLine)$$' \
	      -benchmem -benchtime 0.2s . ; \
	  LELANTUS_MLP=on LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkFig9|BenchmarkPagePhyc|BenchmarkOverflowSweep|BenchmarkRecoveryScrub|BenchmarkChainHeavy)$$' -benchtime 2x . ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_mlp.json

# bench-json-prefetch reruns the mlp benchmarks with the metadata prefetch
# engine on (-prefetch=both) into BENCH_prefetch.json; the names match
# bench-json-mlp's, so `go run ./cmd/benchjson -compare -metric sim-ns
# -filter ChainHeavy BENCH_mlp.json BENCH_prefetch.json` quotes the
# simulated-time delta on the redirect-chain-heavy cells (the quick Fig9
# cells fit the counter cache whole, so prefetch is inert there and the
# unfiltered table doubles as the within-1.02x no-regression check).
bench-json-prefetch:
	{ LELANTUS_PREFETCH=both LELANTUS_MLP=on LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkReadLine|BenchmarkWriteLine)$$' \
	      -benchmem -benchtime 0.2s . ; \
	  LELANTUS_PREFETCH=both LELANTUS_MLP=on LELANTUS_FIDELITY=timing $(GO) test -run '^$$' \
	      -bench '^(BenchmarkFig9|BenchmarkPagePhyc|BenchmarkOverflowSweep|BenchmarkRecoveryScrub|BenchmarkChainHeavy)$$' -benchtime 2x . ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_prefetch.json

# Prefetch smoke: the -prefetch=off byte-identity and knob-inertness pins,
# the per-mode fidelity-equivalence properties (prefetch moves time and
# metadata traffic, never functional state), the delta-table/chain-walker
# unit tests, the cache property tests for the prefetch-fill insert paths,
# and a real CLI run with the walker on and the probe plane reporting
# prefetch coverage.
prefetch-smoke:
	$(GO) test -count=1 ./internal/prefetch ./internal/ctrcache
	$(GO) test -count=1 ./internal/sim -run 'TestPrefetch'
	$(GO) run ./cmd/lelantus-sim -workload forkbench -fidelity timing -mlp=on -prefetch=both \
	    -probe -probe-out /tmp/lelantus-prefetch-smoke.json
	@rm -f /tmp/lelantus-prefetch-smoke.json

# Grid smoke: the work-stealing substrate and coordinator unit tests, the
# results-log decoder pins, the subprocess kill/resume harness (SIGKILL at
# a seeded checkpoint boundary, resume, byte-compare the merged report),
# and a real CLI run/status/resume cycle on a sub-second grid.
grid-smoke:
	$(GO) test -count=1 ./internal/steal ./internal/grid
	@rm -rf /tmp/lelantus-grid-smoke
	$(GO) run ./cmd/lelantus-grid run -dir /tmp/lelantus-grid-smoke \
	    -workloads forkbench -schemes lelantus,baseline -region-kb 256 -strict -quiet
	$(GO) run ./cmd/lelantus-grid status -dir /tmp/lelantus-grid-smoke
	$(GO) run ./cmd/lelantus-grid resume -dir /tmp/lelantus-grid-smoke -strict -quiet
	@rm -rf /tmp/lelantus-grid-smoke

# Telemetry smoke: the metrics-registry unit tests (zero-alloc disabled
# path, percentile math, exposition round-trips), the grid telemetry
# harness tests (mid-run scrape, heartbeat, tail percentiles, profiles,
# report byte-identity with telemetry on), then a real CLI run serving
# live telemetry on an ephemeral port: the announced /metrics endpoint is
# scraped mid-run with curl and the scrape is validated with the built-in
# exposition checker (`lelantus-grid promcheck`); the final heartbeat
# must have marked telemetry.json finished, and `status` must render it.
telemetry-smoke:
	$(GO) test -count=1 ./internal/metrics
	$(GO) test -count=1 ./internal/grid -run 'Telemetry|Tail|Profile|PromCheck'
	@rm -rf /tmp/lelantus-telemetry-smoke
	$(GO) build -o /tmp/lelantus-telemetry-smoke-bin ./cmd/lelantus-grid
	@set -e; \
	/tmp/lelantus-telemetry-smoke-bin run -dir /tmp/lelantus-telemetry-smoke \
	    -spec quick -region-kb 1024 -tail -telemetry-addr 127.0.0.1:0 \
	    -heartbeat 250ms -strict -quiet 2> /tmp/lelantus-telemetry-smoke.err & \
	pid=$$!; url=; \
	for i in $$(seq 1 100); do \
	    url=$$(sed -n 's#^lelantus-grid: telemetry on \(http://[^ ]*/metrics\).*#\1#p' /tmp/lelantus-telemetry-smoke.err); \
	    [ -n "$$url" ] && break; sleep 0.1; \
	done; \
	[ -n "$$url" ] || { echo 'telemetry-smoke: telemetry endpoint never announced'; cat /tmp/lelantus-telemetry-smoke.err; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS "$$url" > /tmp/lelantus-telemetry-smoke.prom \
	    || { echo "telemetry-smoke: mid-run scrape of $$url failed"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	/tmp/lelantus-telemetry-smoke-bin promcheck /tmp/lelantus-telemetry-smoke.prom
	@grep -q '"running":false' /tmp/lelantus-telemetry-smoke/telemetry.json \
	    || (echo 'telemetry-smoke: final heartbeat did not mark telemetry.json finished'; exit 1)
	/tmp/lelantus-telemetry-smoke-bin status -dir /tmp/lelantus-telemetry-smoke
	@rm -rf /tmp/lelantus-telemetry-smoke /tmp/lelantus-telemetry-smoke.err \
	    /tmp/lelantus-telemetry-smoke.prom /tmp/lelantus-telemetry-smoke-bin

verify: build vet nopanic test race crash-sweep persist-matrix probe-smoke mlp-smoke prefetch-smoke grid-smoke telemetry-smoke
