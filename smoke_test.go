package lelantus

import "testing"

// TestSmokeForkbench runs the forkbench under every scheme and checks the
// headline claims hold directionally: Lelantus is faster than Baseline and
// writes far less.
func TestSmokeForkbench(t *testing.T) {
	script := Forkbench(DefaultForkbench(false))
	results := make(map[Scheme]Result)
	for _, s := range Schemes() {
		res, err := Run(s, script)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = res
		t.Logf("%-16v exec=%dns nvmWrites=%d nvmReads=%d cowFaults=%d copies=%d",
			s, res.ExecNs, res.NVMWrites, res.NVMReads, res.Kernel.CoWFaults, res.Kernel.PagesCopied)
	}
	base := results[Baseline]
	lel := results[Lelantus]
	if lel.ExecNs >= base.ExecNs {
		t.Errorf("Lelantus (%d ns) should beat Baseline (%d ns)", lel.ExecNs, base.ExecNs)
	}
	if lel.NVMWrites >= base.NVMWrites {
		t.Errorf("Lelantus writes (%d) should be below Baseline (%d)", lel.NVMWrites, base.NVMWrites)
	}
}
